"""Shared structured-logging configuration for the CLIs and workers.

Every diagnostic line the execution stack emits goes through the
``repro`` logger hierarchy (``repro.campaign.worker``,
``repro.campaign.engine``, ``repro.campaign_worker`` ...), configured
exactly once per process by :func:`setup_logging`:

* human mode (default): ``HH:MM:SS level [name] message`` on stderr —
  the shape the old bare ``print(..., file=sys.stderr)`` diagnostics
  had, plus severity and source;
* JSON mode (``--log-json``): one JSON object per line (``ts``,
  ``level``, ``logger``, ``msg`` + any ``extra`` fields), so a fleet's
  worker logs are machine-mergeable with the campaign journal.

CLIs opt in with two flags added by :func:`add_logging_args` and a
single :func:`setup_from_args` call.  Libraries only ever call
:func:`get_logger` — configuration is the entry point's job.
"""

from __future__ import annotations

import json
import logging
import sys
import time

ROOT_LOGGER = "repro"

LEVELS = ("debug", "info", "warning", "error")

_RESERVED = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None).__dict__) | {"message", "asctime",
                                             "taskName"}


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (idempotent)."""
    if name.startswith(ROOT_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra`` fields ride along."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                doc[key] = value
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True, default=str)


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS level [logger] message`` for terminal stderr."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S",
                              time.localtime(record.created))
        line = (f"{stamp} {record.levelname.lower():7s} "
                f"[{record.name}] {record.getMessage()}")
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def setup_logging(level: str = "warning", json_mode: bool = False,
                  stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root logger.

    Idempotent per process: a second call replaces the handler (and
    level) instead of stacking duplicates — tests and REPL sessions
    reconfigure freely.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from "
                         f"{', '.join(LEVELS)}")
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode
                         else HumanFormatter())
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def add_logging_args(parser) -> None:
    """Attach the shared ``--log-level`` / ``--log-json`` flags."""
    parser.add_argument("--log-level", choices=LEVELS,
                        default="warning",
                        help="diagnostic verbosity on stderr "
                             "(default: warning)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit diagnostics as JSON lines instead "
                             "of human-formatted text")


def setup_from_args(args) -> logging.Logger:
    """:func:`setup_logging` from a parsed argparse namespace."""
    return setup_logging(level=args.log_level,
                         json_mode=args.log_json)
