"""Static program structure: basic blocks, functions and the dictionary.

``Program`` doubles as the paper's "basic block dictionary": the
simulator can materialise the instruction at *any* code address, which is
what permits execution along wrong paths in a trace-driven setting.
"""

from __future__ import annotations

from repro.isa.instruction import INSTR_BYTES, BranchKind, StaticInstruction
from repro.program.behavior import BranchBehavior
from repro.program.memgen import AddressGenerator


class StaticBasicBlock:
    """A straight-line run of instructions, at most one branch at the end.

    Blocks are laid out contiguously: the fall-through successor of a
    block is simply the instruction at ``end_addr``.
    """

    __slots__ = ("bid", "fid", "start_addr", "instrs")

    def __init__(self, bid: int, fid: int, start_addr: int,
                 instrs: list[StaticInstruction]) -> None:
        self.bid = bid
        self.fid = fid
        self.start_addr = start_addr
        self.instrs = instrs

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return len(self.instrs)

    @property
    def end_addr(self) -> int:
        """Address one past the last instruction (the fall-through PC)."""
        return self.start_addr + len(self.instrs) * INSTR_BYTES

    @property
    def terminator(self) -> StaticInstruction | None:
        """The terminating branch, or None for a pure fall-through block."""
        last = self.instrs[-1]
        return last if last.is_branch else None


class Function:
    """A contiguous group of basic blocks with a single entry."""

    __slots__ = ("fid", "block_ids", "entry_bid")

    def __init__(self, fid: int, block_ids: list[int]) -> None:
        if not block_ids:
            raise ValueError("a function needs at least one block")
        self.fid = fid
        self.block_ids = block_ids
        self.entry_bid = block_ids[0]


class Program:
    """A complete synthetic benchmark: code, behaviours, address streams.

    Attributes:
        name: Benchmark name (e.g. ``"gzip"``).
        seed: Seed the program was generated from.
        functions / blocks: Static structure; ``blocks`` indexed by bid.
        behaviors: Behaviour table indexed by
            ``StaticInstruction.behavior``.
        memgens: Address-generator table indexed by
            ``StaticInstruction.memgen``.
        entry_addr: Address of the first instruction of function 0.
    """

    def __init__(self, name: str, seed: int, functions: list[Function],
                 blocks: list[StaticBasicBlock],
                 behaviors: list[BranchBehavior],
                 memgens: list[AddressGenerator]) -> None:
        self.name = name
        self.seed = seed
        self.functions = functions
        self.blocks = blocks
        self.behaviors = behaviors
        self.memgens = memgens
        self.entry_addr = blocks[functions[0].entry_bid].start_addr
        self._instr_map: dict[int, StaticInstruction] = {}
        for block in blocks:
            for instr in block.instrs:
                self._instr_map[instr.addr] = instr

    def instr_at(self, addr: int) -> StaticInstruction | None:
        """Dictionary lookup: the static instruction at ``addr``, if any.

        Returns None for addresses outside the program (a wrong-path
        front-end can run off the end of the code; the fetch unit treats
        that as a stalled fetch until the misprediction resolves).
        """
        return self._instr_map.get(addr)

    @property
    def instruction_count(self) -> int:
        """Total number of static instructions."""
        return len(self._instr_map)

    @property
    def code_bytes(self) -> int:
        """Static code footprint in bytes."""
        return self.instruction_count * INSTR_BYTES

    def static_branches(self) -> list[StaticInstruction]:
        """All branch instructions, in address order."""
        return [instr for instr in sorted(self._instr_map.values(),
                                          key=lambda i: i.addr)
                if instr.is_branch]

    def static_avg_block_size(self) -> float:
        """Mean static basic-block size in instructions."""
        return self.instruction_count / len(self.blocks)

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation.

        Invariants: contiguous layout inside a function, branch targets
        resolve to real instructions, behaviours/memgens referenced by
        instructions exist, call graph edges go to function entries.
        """
        for function in self.functions:
            for prev_bid, next_bid in zip(function.block_ids,
                                          function.block_ids[1:]):
                prev = self.blocks[prev_bid]
                nxt = self.blocks[next_bid]
                if prev.end_addr != nxt.start_addr:
                    raise ValueError(
                        f"blocks {prev_bid}->{next_bid} not contiguous")
        entry_addrs = {self.blocks[f.entry_bid].start_addr
                       for f in self.functions}
        for instr in self._instr_map.values():
            if instr.kind in (BranchKind.COND, BranchKind.JUMP,
                              BranchKind.CALL):
                if self.instr_at(instr.target_addr) is None:
                    raise ValueError(
                        f"branch at {instr.addr:#x} targets unmapped "
                        f"address {instr.target_addr:#x}")
            if instr.kind == BranchKind.CALL:
                if instr.target_addr not in entry_addrs:
                    raise ValueError(
                        f"call at {instr.addr:#x} does not target a "
                        f"function entry")
            if instr.kind in (BranchKind.COND, BranchKind.IND_JUMP):
                if not 0 <= instr.behavior < len(self.behaviors):
                    raise ValueError(
                        f"branch at {instr.addr:#x} has no behaviour")
            if instr.kind == BranchKind.IND_JUMP:
                behavior = self.behaviors[instr.behavior]
                for target in behavior.targets:
                    if self.instr_at(target) is None:
                        raise ValueError(
                            f"indirect at {instr.addr:#x} can target "
                            f"unmapped address {target:#x}")
            if instr.memgen >= 0 and instr.memgen >= len(self.memgens):
                raise ValueError(
                    f"instruction at {instr.addr:#x} references missing "
                    f"address generator {instr.memgen}")
