"""Synthetic program generator.

Builds a :class:`~repro.program.blocks.Program` from a
:class:`~repro.program.profiles.BenchmarkProfile` in three passes:

1. *Plan* — for each function, decide block count, block sizes and the
   terminator of every block (forward conditional, loop-back conditional,
   rare "break" conditional, direct jump, call, indirect jump, return).
2. *Layout* — assign contiguous addresses, functions back to back, so
   fall-through successors are implicit and frequently-sequential paths
   stay sequential (the spike-optimised layout the paper relies on for
   long streams).
3. *Instantiate* — emit instructions, behaviours and address generators.

The plan keeps the call graph acyclic (function *i* only calls *j > i*),
bounding call depth and guaranteeing the architectural walker never
underflows its return stack on the correct path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache

from repro.isa.instruction import INSTR_BYTES, BranchKind, InstrClass, \
    StaticInstruction
from repro.program.behavior import BiasedBehavior, BranchBehavior, \
    IndirectBehavior, LoopBehavior, PatternBehavior
from repro.program.blocks import Function, Program, StaticBasicBlock
from repro.program.memgen import AddressGenerator, ChaseGenerator, \
    StackGenerator, StrideGenerator
from repro.program.profiles import SPECINT2000, BenchmarkProfile
from repro.util.bits import mix64

CODE_BASE = 0x0040_0000
"""Base address of the code segment."""

DATA_BASE = 0x2000_0000
"""Base address of the heap-like data segment."""

STACK_BASE = 0x7FF0_0000
"""Base address of the stack-like data segment."""

_STACK_REGION_BYTES = 8 * 1024
_MAX_BLOCK = 32
_MAX_LOOP_TRIP = 64
_CALL_REACH = 8          # function i may call (i, i + reach]
_ARCH_REGS = range(1, 31)  # r0 reserved as zero, r31 as link


@dataclass
class _BlockPlan:
    """Planned shape of one basic block before instantiation."""

    size: int                      # instructions, terminator included
    kind: BranchKind
    local_target: int = -1         # target block index within function
    callee_fid: int = -1           # for calls
    ind_targets: tuple[int, ...] = ()   # local block indices
    behavior_spec: tuple = ()      # ('loop', trip) / ('fwd', style, p) ...


@dataclass
class _FunctionPlan:
    blocks: list[_BlockPlan] = field(default_factory=list)


def _name_salt(name: str) -> int:
    return mix64(*name.encode())


def _sample_block_size(rng: random.Random, mean: float) -> int:
    """Sample a block size averaging ``mean`` dynamically, clipped to [1, 32].

    The +0.45 term compensates the truncation of the gamma sample and the
    execution weighting of loop bodies, calibrated against
    :func:`repro.trace.walker.dynamic_stats` over the twelve profiles.
    """
    if mean <= 1.0:
        return 1
    body = rng.gammavariate(2.0, (mean - 0.55) / 2.0)
    return max(1, min(_MAX_BLOCK, 1 + round(body)))


def _sample_trip(rng: random.Random, mean: float) -> int:
    trip = 2 + int(rng.expovariate(1.0 / max(mean - 2.0, 1.0)))
    return max(2, min(_MAX_LOOP_TRIP, trip))


def _plan_function(rng: random.Random, size_rng: random.Random,
                   profile: BenchmarkProfile,
                   fid: int, size_scale: float) -> _FunctionPlan:
    """Pass 1: choose block sizes and terminators for one function.

    Structure comes from ``rng`` and sizes from ``size_rng``: the
    calibration loop in :func:`generate_program` rescales sizes without
    perturbing the CFG, which keeps the measured dynamic block size a
    smooth function of the scale.
    """
    mean_blocks = profile.blocks_per_function
    n = max(4, min(3 * mean_blocks,
                   int(round(rng.gauss(mean_blocks, 0.25 * mean_blocks)))))
    plan = _FunctionPlan()
    can_call = fid + 1 < profile.n_functions
    loop_depth = 0   # crude nesting guard: avoid towers of backward branches

    for i in range(n):
        size = _sample_block_size(size_rng,
                                  profile.avg_bb_size * size_scale)
        if i == n - 1:
            # Function epilogue: main loops forever, others return.
            if fid == 0:
                plan.blocks.append(_BlockPlan(size, BranchKind.JUMP,
                                              local_target=0))
            else:
                plan.blocks.append(_BlockPlan(size, BranchKind.RET))
            continue
        if i >= n - 3:
            # Keep the tail simple so forward targets always exist.
            plan.blocks.append(_BlockPlan(size, BranchKind.JUMP,
                                          local_target=i + 1))
            continue

        r = rng.random()
        if r < profile.p_loop and i > 0 and loop_depth < 2:
            # Loop bodies span several blocks so that streams (sequences
            # between taken branches) cover multiple basic blocks, as in
            # layout-optimised binaries.
            span = 2 + int(rng.expovariate(1.0 / 2.5))
            back = max(0, i - min(span, 8))
            trip = _sample_trip(rng, profile.loop_trip_mean)
            plan.blocks.append(_BlockPlan(size, BranchKind.COND,
                                          local_target=back,
                                          behavior_spec=("loop", trip)))
            loop_depth += 1
            continue
        loop_depth = max(0, loop_depth - 1)
        r -= profile.p_loop
        if r < profile.p_call and can_call:
            callee = rng.randint(fid + 1,
                                 min(profile.n_functions - 1,
                                     fid + _CALL_REACH))
            plan.blocks.append(_BlockPlan(size, BranchKind.CALL,
                                          callee_fid=callee))
            continue
        r -= profile.p_call
        if r < profile.p_jump:
            skip = 1 if rng.random() < 0.6 else 2
            plan.blocks.append(_BlockPlan(size, BranchKind.JUMP,
                                          local_target=min(i + skip, n - 1)))
            continue
        r -= profile.p_jump
        if r < profile.p_indirect:
            fanout = rng.randint(2, max(2, profile.indirect_fanout))
            hi = min(i + 8, n - 1)
            targets = tuple(sorted({rng.randint(i + 1, hi)
                                    for _ in range(fanout)}))
            plan.blocks.append(_BlockPlan(size, BranchKind.IND_JUMP,
                                          ind_targets=targets,
                                          behavior_spec=("ind",)))
            continue
        # Forward conditional: the bread and butter of the CFG.
        target = rng.randint(i + 2, min(i + 7, n - 1))
        style_roll = rng.random()
        if style_roll < profile.hard_branch_frac:
            spec = ("fwd_hard",)
        elif style_roll < profile.hard_branch_frac + 0.35:
            spec = ("fwd_pattern",)
        else:
            spec = ("fwd_rare",)
        plan.blocks.append(_BlockPlan(size, BranchKind.COND,
                                      local_target=target,
                                      behavior_spec=spec))
    _demote_hard_branches_in_loops(plan)
    return plan


def _demote_hard_branches_in_loops(plan: _FunctionPlan) -> None:
    """Downgrade history-resistant branches inside loop bodies.

    A noisy branch executing every loop iteration floods the global
    history with pseudo-random bits and destroys the learnability of
    *every* branch around it — its dynamic weight is amplified far
    beyond its static share.  Real hard branches correlate with their
    surroundings in ways a pure random stream cannot model, so we keep
    hard branches to straight-line (colder) code.
    """
    in_loop = set()
    for i, block_plan in enumerate(plan.blocks):
        if block_plan.kind == BranchKind.COND and block_plan.behavior_spec \
                and block_plan.behavior_spec[0] == "loop":
            in_loop.update(range(block_plan.local_target, i))
    for j in in_loop:
        block_plan = plan.blocks[j]
        if block_plan.behavior_spec \
                and block_plan.behavior_spec[0] == "fwd_hard":
            block_plan.behavior_spec = ("fwd_rare",)


class _DataArena:
    """Carves shared data regions and hands out address generators.

    The profile's working set is a *program* property: all chase
    generators point into one shared heap region of ``ws_kb`` so the
    union of their footprints equals the working set, and stride
    generators rotate through a few medium arrays.
    """

    def __init__(self, rng: random.Random, profile: BenchmarkProfile,
                 salt: int) -> None:
        self._rng = rng
        self._profile = profile
        self._salt = salt
        self._serial = 0
        ws_bytes = profile.ws_kb * 1024
        self._heap_base = DATA_BASE
        self._heap_bytes = max(ws_bytes, 4096)
        # Hot strided arrays stay small: real ILP-class SPECint keeps its
        # inner-loop data close to L1-resident; the big working set is
        # reached through the chase generators over the heap region.
        array_bytes = max(2 * 1024, min(16 * 1024, ws_bytes // 32))
        self._arrays = [self._heap_base + self._heap_bytes + k * array_bytes
                        for k in range(8)]
        self._array_bytes = array_bytes
        self._next_array = 0

    def make_generator(self) -> AddressGenerator:
        """Return an address generator drawn from the profile's mix."""
        self._serial += 1
        salt = mix64(self._salt, 0xDA7A, self._serial)
        r = self._rng.random()
        if r < self._profile.chase_frac:
            return ChaseGenerator(self._heap_base, self._heap_bytes, salt)
        if r < self._profile.chase_frac + self._profile.stride_frac:
            base = self._arrays[self._next_array % len(self._arrays)]
            self._next_array += 1
            stride = self._rng.choice((8, 8, 16, 64))
            return StrideGenerator(base, stride, self._array_bytes)
        return StackGenerator(STACK_BASE, _STACK_REGION_BYTES, salt)


def _make_pattern(rng: random.Random, taken_p: float) -> tuple[bool, ...]:
    # Short periods are fully learnable by a history predictor once the
    # surrounding control flow is stable — the realistic "easy" case.
    # Half are run-structured (e.g. T once every k): their phase is
    # recoverable from the branch's own recent outcome even when
    # neighbouring branches perturb the global history.
    length = rng.randint(2, 6)
    if rng.random() < 0.5:
        taken_slot = rng.randrange(length)
        return tuple(i == taken_slot for i in range(length))
    pattern = tuple(rng.random() < taken_p for _ in range(length))
    if any(pattern):
        return pattern
    # Guarantee at least one taken slot so the branch is not degenerate.
    idx = rng.randrange(length)
    return tuple(i == idx for i in range(length))


def _make_behavior(rng: random.Random, profile: BenchmarkProfile,
                   spec: tuple, salt: int,
                   ind_targets: tuple[int, ...] = ()) -> BranchBehavior:
    kind = spec[0]
    if kind == "loop":
        return LoopBehavior(spec[1])
    if kind == "ind":
        return IndirectBehavior(ind_targets, salt,
                                regularity=rng.uniform(0.6, 0.85))
    if kind == "fwd_hard":
        # Hard data-dependent branch: an irregular pattern whose period
        # exceeds the predictors' history length.  Learning it needs
        # many visits per history context — under table pressure this
        # is where gskew's aliasing tolerance pays off.  (A purely
        # random stream would be unlearnable by *any* history predictor
        # and its noise would poison the global history for every other
        # branch, so the period is kept within what a 10^5-instruction
        # window can partially learn.)
        jitter = rng.uniform(-0.08, 0.08)
        density = min(0.95, max(0.05, profile.hard_bias + jitter))
        length = rng.randint(24, 96)
        pattern = tuple(rng.random() < density for _ in range(length))
        return PatternBehavior(pattern)
    if kind == "fwd_pattern":
        return PatternBehavior(_make_pattern(rng, profile.fwd_taken_p))
    if kind == "fwd_rare":
        # Strongly biased branch.  Half are *never* taken (error checks,
        # cold paths): these are exactly what an FTB embeds inside its
        # fetch blocks while a BTB still terminates on them.  The rest
        # are rare "breaks" or nearly-always-taken guards.
        roll = rng.random()
        if roll < 0.5:
            return BiasedBehavior(0.0, salt)
        if roll < 0.8:
            return BiasedBehavior(rng.uniform(0.01, 0.06), salt)
        return BiasedBehavior(rng.uniform(0.94, 0.99), salt)
    raise ValueError(f"unknown behaviour spec {spec!r}")


def generate_program(profile: BenchmarkProfile, seed: int = 0) -> Program:
    """Generate the synthetic program for ``profile``.

    Deterministic in ``(profile, seed)``.  The returned program passes
    :meth:`Program.validate`.  Generation is closed-loop calibrated: the
    dynamic average basic-block size is measured on the correct path and
    block sizes are rescaled until it lands within a few percent of the
    profile's Table 1 target (execution weighting of loop bodies would
    otherwise skew individual seeds by 10-20%).
    """
    scale = 1.0
    program = _generate_once(profile, seed, scale)
    for _ in range(4):
        measured = _measure_dynamic_block_size(program)
        rel = measured / profile.avg_bb_size
        if 0.96 <= rel <= 1.04:
            break
        scale = min(2.5, max(0.4, scale / rel))
        program = _generate_once(profile, seed, scale)
    return program


def _measure_dynamic_block_size(program: Program,
                                instructions: int = 50_000) -> float:
    """Dynamic instructions-per-branch along the correct path."""
    # Imported here to avoid a package-level cycle: repro.trace depends on
    # repro.program for its data types.
    from repro.trace.context import ThreadContext

    ctx = ThreadContext(program)
    branches = 0
    for _ in range(instructions):
        static = program.instr_at(ctx.pc)
        if static is None:  # pragma: no cover - validated programs are total
            raise RuntimeError(f"unmapped architectural pc {ctx.pc:#x}")
        if static.is_branch:
            branches += 1
        ctx.step(static)
    return instructions / max(branches, 1)


def _generate_once(profile: BenchmarkProfile, seed: int,
                   size_scale: float) -> Program:
    salt = mix64(seed, _name_salt(profile.name))
    rng = random.Random(salt)
    size_rng = random.Random(mix64(salt, 0x512E))

    plans = [_plan_function(rng, size_rng, profile, fid, size_scale)
             for fid in range(profile.n_functions)]

    # Pass 2: layout. Function f starts where f-1 ended.
    func_entry_addr: list[int] = []
    block_addr: list[list[int]] = []
    addr = CODE_BASE
    for plan in plans:
        func_entry_addr.append(addr)
        addrs = []
        for block_plan in plan.blocks:
            addrs.append(addr)
            addr += block_plan.size * INSTR_BYTES
        block_addr.append(addrs)

    # Pass 3: instantiate.
    arena = _DataArena(rng, profile, salt)
    behaviors: list[BranchBehavior] = []
    memgens: list[AddressGenerator] = []
    blocks: list[StaticBasicBlock] = []
    functions: list[Function] = []
    sid = 0
    bid = 0

    boost = _mix_boost(profile)
    for fid, plan in enumerate(plans):
        block_ids: list[int] = []
        recent_dests: list[int] = []
        recent_alu_dests: list[int] = []
        last_load_dest = -1
        for local_idx, block_plan in enumerate(plan.blocks):
            start = block_addr[fid][local_idx]
            instrs: list[StaticInstruction] = []
            for slot in range(block_plan.size - 1):
                instr_addr = start + slot * INSTR_BYTES
                instrs.append(_make_body_instr(
                    rng, profile, arena, memgens, sid, instr_addr,
                    recent_dests, last_load_dest, boost))
                if instrs[-1].opclass == InstrClass.LOAD:
                    last_load_dest = instrs[-1].dest
                elif instrs[-1].opclass == InstrClass.INT_ALU \
                        and instrs[-1].dest >= 0:
                    # Branch conditions prefer these: induction-variable
                    # style operands that resolve in one cycle.
                    recent_alu_dests.append(instrs[-1].dest)
                    if len(recent_alu_dests) > 4:
                        recent_alu_dests.pop(0)
                if instrs[-1].dest >= 0:
                    recent_dests.append(instrs[-1].dest)
                    if len(recent_dests) > profile.dep_window:
                        recent_dests.pop(0)
                sid += 1
            term_addr = start + (block_plan.size - 1) * INSTR_BYTES
            # Behaviour parameters are keyed by structural position
            # (fid, local_idx) so calibration rescales block sizes
            # without re-rolling loop trips or branch biases.
            term_rng = random.Random(mix64(salt, 0xBEAF, fid, local_idx))
            term_srcs = recent_alu_dests if recent_alu_dests \
                else recent_dests
            instrs.append(_make_terminator(
                term_rng, profile, block_plan, term_addr, sid, fid,
                block_addr, func_entry_addr, behaviors, term_srcs,
                mix64(salt, fid, local_idx)))
            sid += 1
            blocks.append(StaticBasicBlock(bid, fid, start, instrs))
            block_ids.append(bid)
            bid += 1
        functions.append(Function(fid, block_ids))

    return Program(profile.name, seed, functions, blocks, behaviors,
                   memgens)


def _mix_boost(profile: BenchmarkProfile) -> float:
    """Correction so the *dynamic* memory mix matches the profile.

    Profile fractions are per instruction, but only ``size - 1`` slots of
    each block are non-branch; small-block benchmarks (mcf) would
    otherwise under-shoot their load fraction substantially.
    """
    boost = profile.avg_bb_size / max(profile.avg_bb_size - 1.0, 1.0)
    mix = (profile.load_frac + profile.store_frac + profile.mul_frac
           + profile.fp_frac)
    return min(boost, 0.95 / mix)


def _make_body_instr(rng: random.Random, profile: BenchmarkProfile,
                     arena: _DataArena, memgens: list[AddressGenerator],
                     sid: int, addr: int, recent_dests: list[int],
                     last_load_dest: int, boost: float) -> StaticInstruction:
    """Emit one non-branch instruction with realistic dependences."""
    r = rng.random() / boost
    srcs = _pick_srcs(rng, recent_dests)
    dest = rng.choice(_ARCH_REGS)
    if r < profile.load_frac:
        memgens.append(arena.make_generator())
        if last_load_dest >= 0 and rng.random() < profile.chase_chain_p:
            srcs = (last_load_dest,)
        return StaticInstruction(sid, addr, InstrClass.LOAD, dest=dest,
                                 srcs=srcs, memgen=len(memgens) - 1)
    r -= profile.load_frac
    if r < profile.store_frac:
        memgens.append(arena.make_generator())
        return StaticInstruction(sid, addr, InstrClass.STORE, dest=-1,
                                 srcs=srcs, memgen=len(memgens) - 1)
    r -= profile.store_frac
    if r < profile.mul_frac:
        return StaticInstruction(sid, addr, InstrClass.INT_MUL, dest=dest,
                                 srcs=srcs)
    r -= profile.mul_frac
    if r < profile.fp_frac:
        return StaticInstruction(sid, addr, InstrClass.FP_ALU, dest=dest,
                                 srcs=srcs)
    return StaticInstruction(sid, addr, InstrClass.INT_ALU, dest=dest,
                             srcs=srcs)


def _pick_srcs(rng: random.Random,
               recent_dests: list[int]) -> tuple[int, ...]:
    if not recent_dests:
        return ()
    roll = rng.random()
    if roll < 0.25:
        return ()                       # immediate/constant operands
    if len(recent_dests) == 1 or roll < 0.70:
        return (rng.choice(recent_dests),)
    return (rng.choice(recent_dests), rng.choice(recent_dests))


def _make_terminator(rng: random.Random, profile: BenchmarkProfile,
                     block_plan: _BlockPlan, addr: int, sid: int, fid: int,
                     block_addr: list[list[int]],
                     func_entry_addr: list[int],
                     behaviors: list[BranchBehavior],
                     recent_dests: list[int],
                     salt: int) -> StaticInstruction:
    """Emit the terminating branch of a block from its plan."""
    kind = block_plan.kind
    srcs = _pick_srcs(rng, recent_dests)
    if kind == BranchKind.RET:
        return StaticInstruction(sid, addr, InstrClass.BRANCH,
                                 kind=BranchKind.RET, srcs=())
    if kind == BranchKind.CALL:
        target = func_entry_addr[block_plan.callee_fid]
        return StaticInstruction(sid, addr, InstrClass.BRANCH,
                                 kind=BranchKind.CALL, dest=31,
                                 target_addr=target)
    if kind == BranchKind.JUMP:
        target = block_addr[fid][block_plan.local_target]
        return StaticInstruction(sid, addr, InstrClass.BRANCH,
                                 kind=BranchKind.JUMP, target_addr=target)
    if kind == BranchKind.IND_JUMP:
        targets = tuple(block_addr[fid][t] for t in block_plan.ind_targets)
        behavior = _make_behavior(rng, profile, block_plan.behavior_spec,
                                  mix64(salt, sid), ind_targets=targets)
        behaviors.append(behavior)
        return StaticInstruction(sid, addr, InstrClass.BRANCH,
                                 kind=BranchKind.IND_JUMP, srcs=srcs,
                                 behavior=len(behaviors) - 1)
    if kind == BranchKind.COND:
        target = block_addr[fid][block_plan.local_target]
        behavior = _make_behavior(rng, profile, block_plan.behavior_spec,
                                  mix64(salt, sid))
        behaviors.append(behavior)
        return StaticInstruction(sid, addr, InstrClass.BRANCH,
                                 kind=BranchKind.COND, srcs=srcs,
                                 target_addr=target,
                                 behavior=len(behaviors) - 1)
    raise ValueError(f"unexpected terminator kind {kind!r}")


@lru_cache(maxsize=64)
def program_for(name: str, seed: int = 0) -> Program:
    """Return the (cached) synthetic program for a SPECint2000 benchmark.

    Args:
        name: One of the twelve names in
            :data:`repro.program.profiles.SPECINT2000`.
        seed: Generation seed; programs are cached per (name, seed).
    """
    if name not in SPECINT2000:
        known = ", ".join(sorted(SPECINT2000))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")
    return generate_program(SPECINT2000[name], seed)
