"""SPECint2000 benchmark profiles (paper Table 1, plus calibration knobs).

The paper characterises its benchmarks by ref input, fast-forward
distance and *average basic-block size* (Table 1) and classifies them as
ILP or memory-bounded by how they are used in Table 2's workloads
(``MEM`` workloads draw from mcf, twolf, vpr, perlbmk).

A :class:`BenchmarkProfile` records the Table 1 data verbatim and adds
the knobs the synthetic generator needs: code footprint, control
structure mix, branch predictability, data working set and dependence
density.  The knob values are chosen per benchmark class so the four
properties the paper's results depend on (block/stream length,
predictability, I-footprint, D-miss behaviour) land in realistic ranges;
``benchmarks/bench_table1_profiles.py`` regenerates the measured
equivalents of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generation parameters for one synthetic benchmark.

    Attributes mirroring the paper's Table 1:
        name: SPEC benchmark name without its numeric prefix.
        ref_input: Ref input set used by the paper.
        fast_forward_billion: Billions of instructions skipped before the
            paper's 300M-instruction trace window.
        avg_bb_size: Dynamic average basic-block size in instructions.

    Synthetic-workload knobs (see DESIGN.md, "Substitutions"):
        memory_bound: True for the paper's MEM-class benchmarks.
        n_functions / blocks_per_function: Control code footprint.
        loop_trip_mean: Mean loop trip count.
        p_loop / p_call / p_jump / p_indirect: Terminator mix; remaining
            probability mass becomes forward conditionals.
        fwd_taken_p: Mean taken probability of forward conditionals
            (low values = spike-like layout, longer streams).
        hard_branch_frac: Fraction of forward conditionals that are
            history-resistant (purely biased random).
        hard_bias: Taken probability of those hard branches.
        load_frac / store_frac / mul_frac / fp_frac: Instruction mix.
        ws_kb: Data working-set size in KB.
        chase_frac / stride_frac: Access-pattern mix for memory
            instructions (remainder is stack-like).
        dep_window: Register reuse distance; small values create serial
            dependence chains (low ILP).
        chase_chain_p: Probability a load depends on the previous load
            (pointer chasing).
        indirect_fanout: Max distinct targets of an indirect jump.
    """

    name: str
    ref_input: str
    fast_forward_billion: float
    avg_bb_size: float
    memory_bound: bool
    n_functions: int
    blocks_per_function: int
    loop_trip_mean: float
    p_loop: float
    p_call: float
    p_jump: float
    p_indirect: float
    fwd_taken_p: float
    hard_branch_frac: float
    hard_bias: float
    load_frac: float
    store_frac: float
    ws_kb: int
    chase_frac: float
    stride_frac: float
    dep_window: int
    chase_chain_p: float
    mul_frac: float = 0.04
    fp_frac: float = 0.01
    indirect_fanout: int = 3

    def __post_init__(self) -> None:
        total = self.p_loop + self.p_call + self.p_jump + self.p_indirect
        if total >= 1.0:
            raise ValueError(
                f"{self.name}: terminator probabilities sum to {total:.2f}, "
                f"leaving no mass for forward conditionals")
        mix = (self.load_frac + self.store_frac + self.mul_frac
               + self.fp_frac)
        if mix >= 1.0:
            raise ValueError(
                f"{self.name}: instruction mix sums to {mix:.2f}")
        if self.chase_frac + self.stride_frac > 1.0:
            raise ValueError(f"{self.name}: memory pattern mix exceeds 1")


SPECINT2000: dict[str, BenchmarkProfile] = {
    "gzip": BenchmarkProfile(
        name="gzip", ref_input="graphic", fast_forward_billion=68.1,
        avg_bb_size=11.02, memory_bound=False,
        n_functions=12, blocks_per_function=23, loop_trip_mean=14.0,
        p_loop=0.20, p_call=0.07, p_jump=0.07, p_indirect=0.01,
        fwd_taken_p=0.22, hard_branch_frac=0.035, hard_bias=0.70,
        load_frac=0.22, store_frac=0.11,
        ws_kb=128, chase_frac=0.05, stride_frac=0.55,
        dep_window=9, chase_chain_p=0.08),
    "vpr": BenchmarkProfile(
        name="vpr", ref_input="place", fast_forward_billion=2.1,
        avg_bb_size=9.68, memory_bound=True,
        n_functions=16, blocks_per_function=32, loop_trip_mean=9.0,
        p_loop=0.18, p_call=0.09, p_jump=0.08, p_indirect=0.01,
        fwd_taken_p=0.26, hard_branch_frac=0.065, hard_bias=0.72,
        load_frac=0.27, store_frac=0.11,
        ws_kb=1024, chase_frac=0.42, stride_frac=0.25,
        dep_window=4, chase_chain_p=0.35),
    "gcc": BenchmarkProfile(
        name="gcc", ref_input="166.i", fast_forward_billion=15.0,
        avg_bb_size=5.76, memory_bound=False,
        n_functions=48, blocks_per_function=72, loop_trip_mean=6.0,
        p_loop=0.14, p_call=0.12, p_jump=0.10, p_indirect=0.03,
        fwd_taken_p=0.30, hard_branch_frac=0.085, hard_bias=0.74,
        load_frac=0.25, store_frac=0.13,
        ws_kb=192, chase_frac=0.12, stride_frac=0.35,
        dep_window=7, chase_chain_p=0.12),
    "mcf": BenchmarkProfile(
        name="mcf", ref_input="inp.in", fast_forward_billion=43.5,
        avg_bb_size=3.92, memory_bound=True,
        n_functions=10, blocks_per_function=40, loop_trip_mean=12.0,
        p_loop=0.20, p_call=0.08, p_jump=0.07, p_indirect=0.01,
        fwd_taken_p=0.28, hard_branch_frac=0.050, hard_bias=0.70,
        load_frac=0.31, store_frac=0.09,
        ws_kb=8192, chase_frac=0.65, stride_frac=0.10,
        dep_window=4, chase_chain_p=0.50),
    "crafty": BenchmarkProfile(
        name="crafty", ref_input="crafty.in", fast_forward_billion=74.7,
        avg_bb_size=9.24, memory_bound=False,
        n_functions=30, blocks_per_function=43, loop_trip_mean=8.0,
        p_loop=0.16, p_call=0.10, p_jump=0.08, p_indirect=0.02,
        fwd_taken_p=0.24, hard_branch_frac=0.050, hard_bias=0.72,
        load_frac=0.24, store_frac=0.09,
        ws_kb=64, chase_frac=0.10, stride_frac=0.40,
        dep_window=8, chase_chain_p=0.08),
    "parser": BenchmarkProfile(
        name="parser", ref_input="ref.in", fast_forward_billion=83.1,
        avg_bb_size=6.37, memory_bound=False,
        n_functions=28, blocks_per_function=45, loop_trip_mean=7.0,
        p_loop=0.15, p_call=0.11, p_jump=0.09, p_indirect=0.02,
        fwd_taken_p=0.28, hard_branch_frac=0.075, hard_bias=0.76,
        load_frac=0.26, store_frac=0.12,
        ws_kb=320, chase_frac=0.20, stride_frac=0.30,
        dep_window=6, chase_chain_p=0.20),
    "eon": BenchmarkProfile(
        name="eon", ref_input="cook", fast_forward_billion=57.6,
        avg_bb_size=8.73, memory_bound=False,
        n_functions=28, blocks_per_function=41, loop_trip_mean=10.0,
        p_loop=0.18, p_call=0.12, p_jump=0.07, p_indirect=0.02,
        fwd_taken_p=0.20, hard_branch_frac=0.025, hard_bias=0.68,
        load_frac=0.24, store_frac=0.13, fp_frac=0.06,
        ws_kb=48, chase_frac=0.10, stride_frac=0.45,
        dep_window=9, chase_chain_p=0.05),
    "perlbmk": BenchmarkProfile(
        name="perlbmk", ref_input="splitmail.535",
        fast_forward_billion=45.3,
        avg_bb_size=10.06, memory_bound=True,
        n_functions=32, blocks_per_function=43, loop_trip_mean=9.0,
        p_loop=0.16, p_call=0.12, p_jump=0.09, p_indirect=0.03,
        fwd_taken_p=0.25, hard_branch_frac=0.055, hard_bias=0.73,
        load_frac=0.28, store_frac=0.13,
        ws_kb=640, chase_frac=0.30, stride_frac=0.30,
        dep_window=5, chase_chain_p=0.25),
    "gap": BenchmarkProfile(
        name="gap", ref_input="ref.in", fast_forward_billion=79.8,
        avg_bb_size=9.16, memory_bound=False,
        n_functions=28, blocks_per_function=39, loop_trip_mean=11.0,
        p_loop=0.19, p_call=0.10, p_jump=0.07, p_indirect=0.02,
        fwd_taken_p=0.23, hard_branch_frac=0.040, hard_bias=0.71,
        load_frac=0.25, store_frac=0.11,
        ws_kb=128, chase_frac=0.10, stride_frac=0.50,
        dep_window=8, chase_chain_p=0.08),
    "vortex": BenchmarkProfile(
        name="vortex", ref_input="lendian1.raw", fast_forward_billion=58.2,
        avg_bb_size=6.50, memory_bound=False,
        n_functions=40, blocks_per_function=54, loop_trip_mean=7.0,
        p_loop=0.14, p_call=0.13, p_jump=0.09, p_indirect=0.02,
        fwd_taken_p=0.26, hard_branch_frac=0.045, hard_bias=0.72,
        load_frac=0.27, store_frac=0.14,
        ws_kb=256, chase_frac=0.15, stride_frac=0.40,
        dep_window=7, chase_chain_p=0.12),
    "bzip2": BenchmarkProfile(
        name="bzip2", ref_input="inp.program", fast_forward_billion=51.3,
        avg_bb_size=10.02, memory_bound=False,
        n_functions=12, blocks_per_function=25, loop_trip_mean=15.0,
        p_loop=0.21, p_call=0.06, p_jump=0.06, p_indirect=0.01,
        fwd_taken_p=0.21, hard_branch_frac=0.040, hard_bias=0.70,
        load_frac=0.24, store_frac=0.12,
        ws_kb=160, chase_frac=0.08, stride_frac=0.55,
        dep_window=9, chase_chain_p=0.08),
    "twolf": BenchmarkProfile(
        name="twolf", ref_input="ref", fast_forward_billion=324.3,
        avg_bb_size=8.00, memory_bound=True,
        n_functions=20, blocks_per_function=38, loop_trip_mean=8.0,
        p_loop=0.17, p_call=0.09, p_jump=0.08, p_indirect=0.01,
        fwd_taken_p=0.27, hard_branch_frac=0.070, hard_bias=0.74,
        load_frac=0.29, store_frac=0.10,
        ws_kb=2048, chase_frac=0.50, stride_frac=0.15,
        dep_window=4, chase_chain_p=0.40),
}

MEM_BENCHMARKS = frozenset(
    name for name, prof in SPECINT2000.items() if prof.memory_bound)
"""Benchmarks the paper's Table 2 treats as memory-bounded."""

ILP_BENCHMARKS = frozenset(
    name for name, prof in SPECINT2000.items() if not prof.memory_bound)
"""Benchmarks the paper's Table 2 treats as high-ILP."""
