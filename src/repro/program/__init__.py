"""Synthetic benchmark programs.

The paper evaluates on Alpha SPECint2000 traces, which we do not have.
This package builds the closest synthetic equivalent: per-benchmark
control-flow graphs whose *dynamic* properties match what the paper's
mechanisms are sensitive to — Table 1's average basic-block size, branch
predictability, instruction-stream length, code footprint, data working
set and dependence density (see DESIGN.md, "Substitutions").

Every branch outcome and memory address is a pure deterministic function
of ``(salt, occurrence index)``; the generated program is therefore a
fully reproducible stand-in for a trace plus a basic-block dictionary.
"""

from repro.program.behavior import (
    BiasedBehavior,
    BranchBehavior,
    IndirectBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.program.blocks import Function, Program, StaticBasicBlock
from repro.program.generator import generate_program, program_for
from repro.program.memgen import (
    AddressGenerator,
    ChaseGenerator,
    StackGenerator,
    StrideGenerator,
)
from repro.program.profiles import (
    ILP_BENCHMARKS,
    MEM_BENCHMARKS,
    SPECINT2000,
    BenchmarkProfile,
)

__all__ = [
    "AddressGenerator",
    "BenchmarkProfile",
    "BiasedBehavior",
    "BranchBehavior",
    "ChaseGenerator",
    "Function",
    "ILP_BENCHMARKS",
    "IndirectBehavior",
    "LoopBehavior",
    "MEM_BENCHMARKS",
    "PatternBehavior",
    "Program",
    "SPECINT2000",
    "StackGenerator",
    "StaticBasicBlock",
    "StrideGenerator",
    "generate_program",
    "program_for",
]
