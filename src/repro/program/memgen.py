"""Deterministic data-address generators.

Each static load/store owns a generator; occurrence *n* of the
instruction accesses ``generator.address(n)`` — again a pure function,
so wrong-path memory references are well-defined and architectural
address streams cannot be corrupted by speculation.

Three access archetypes cover the cache behaviours the paper's workload
classes need:

* ``StackGenerator`` — tiny hot region, essentially always hits;
* ``StrideGenerator`` — sequential array walks with spatial locality;
* ``ChaseGenerator`` — pointer chasing spread over a working set; with a
  working set far beyond the cache this produces the long-latency misses
  that make a benchmark "memory bounded" in the paper's sense.
"""

from __future__ import annotations

from repro.util.bits import GAMMA, MASK64, MIX1, MIX2, presalted

_WORD = 8
"""Access granularity in bytes; keeps accesses line-aligned-friendly."""


class AddressGenerator:
    """Interface: effective address of the n-th occurrence."""

    __slots__ = ()

    def address(self, n: int) -> int:
        """Return the effective address of occurrence ``n`` (0-based)."""
        raise NotImplementedError

    def footprint(self) -> int:
        """Return the size in bytes of the region this generator touches."""
        raise NotImplementedError


class StackGenerator(AddressGenerator):
    """Accesses within a small frame-like region (hits after warm-up)."""

    __slots__ = ("base", "size", "salt", "_h", "_slots")

    def __init__(self, base: int, size: int, salt: int) -> None:
        if size < _WORD:
            raise ValueError(f"stack region must be >= {_WORD} bytes")
        self.base = base
        self.size = size
        self.salt = salt
        self._h = presalted(salt)
        self._slots = size // _WORD

    def address(self, n: int) -> int:
        # mix64(salt, n) with the salt fold precomputed and the final
        # splitmix64 round inlined — one call per memory instruction.
        x = ((self._h ^ n) + GAMMA) & MASK64
        x = ((x ^ (x >> 30)) * MIX1) & MASK64
        x = ((x ^ (x >> 27)) * MIX2) & MASK64
        return self.base + ((x ^ (x >> 31)) % self._slots) * _WORD

    def footprint(self) -> int:
        return self.size


class StrideGenerator(AddressGenerator):
    """Strided walk over an array: ``base + (n * stride) mod ws``."""

    __slots__ = ("base", "stride", "ws")

    def __init__(self, base: int, stride: int, ws: int) -> None:
        if ws < _WORD:
            raise ValueError(f"working set must be >= {_WORD} bytes")
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride}")
        self.base = base
        self.stride = stride
        self.ws = ws

    def address(self, n: int) -> int:
        return self.base + (n * self.stride) % self.ws

    def footprint(self) -> int:
        return self.ws


class ChaseGenerator(AddressGenerator):
    """Pointer-chase: pseudo-random word within a working set.

    With ``ws`` much larger than the cache this yields a miss rate close
    to 1 and no spatial locality — the archetypal mcf/twolf access
    pattern that drives the paper's Section 5.2 results.
    """

    __slots__ = ("base", "ws", "salt", "_h", "_slots")

    def __init__(self, base: int, ws: int, salt: int) -> None:
        if ws < _WORD:
            raise ValueError(f"working set must be >= {_WORD} bytes")
        self.base = base
        self.ws = ws
        self.salt = salt
        self._h = presalted(salt)
        self._slots = ws // _WORD

    def address(self, n: int) -> int:
        # Same inlined mix64(salt, n) as StackGenerator.address.
        x = ((self._h ^ n) + GAMMA) & MASK64
        x = ((x ^ (x >> 30)) * MIX1) & MASK64
        x = ((x ^ (x >> 27)) * MIX2) & MASK64
        return self.base + ((x ^ (x >> 31)) % self._slots) * _WORD

    def footprint(self) -> int:
        return self.ws
