"""Deterministic branch behaviours.

Each conditional or indirect branch in a synthetic program owns a
behaviour object.  A behaviour answers "what does occurrence *n* of this
branch do?" as a *pure function* of ``n`` — no mutable state.  This is
what makes wrong-path fetch safe: the front-end may evaluate outcomes
speculatively without corrupting anything, and a squash only has to
restore the thread's position, never per-branch state.

The mix of behaviour classes controls how learnable a benchmark's
branches are, which is one of the four knobs the synthetic workloads are
calibrated on (see DESIGN.md).
"""

from __future__ import annotations

from repro.util.bits import GAMMA, MASK64, MIX1, MIX2, mix64, presalted, \
    unit_float

_INV53 = 1.0 / (1 << 53)
"""Exact power-of-two reciprocal: multiplying by it is bit-identical to
``unit_float``'s division."""


class BranchBehavior:
    """Interface: outcome of the n-th architectural occurrence."""

    __slots__ = ()

    def taken(self, n: int) -> bool:
        """Return True if occurrence ``n`` (0-based) is taken."""
        raise NotImplementedError

    def target(self, n: int) -> int:
        """Return the taken-target of occurrence ``n``.

        Only indirect behaviours override this; direct branches keep their
        static target and never consult the behaviour for it.
        """
        raise NotImplementedError


class LoopBehavior(BranchBehavior):
    """Backward loop branch: taken ``trip - 1`` times, then falls through.

    A short trip count is learnable from global history; a long one costs
    a single misprediction per loop exit, which matches how real
    predictors experience loop branches.
    """

    __slots__ = ("trip",)

    def __init__(self, trip: int) -> None:
        if trip < 1:
            raise ValueError(f"loop trip count must be >= 1, got {trip}")
        self.trip = trip

    def taken(self, n: int) -> bool:
        return (n % self.trip) != self.trip - 1


class BiasedBehavior(BranchBehavior):
    """Data-dependent branch: taken with fixed probability, no pattern.

    The outcome stream is produced by hashing the occurrence index, so it
    looks random to any history-based predictor; the achievable accuracy
    is ``max(p, 1-p)``.  These branches model the hard-to-predict residue
    that separates gshare from gskew (aliasing pressure) in the paper.
    """

    __slots__ = ("p_taken", "salt", "_h")

    def __init__(self, p_taken: float, salt: int) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError(f"p_taken must be within [0, 1], got {p_taken}")
        self.p_taken = p_taken
        self.salt = salt
        self._h = presalted(salt)

    def taken(self, n: int) -> bool:
        # unit_float(mix64(salt, n)) with the salt fold precomputed and
        # the final splitmix64 round inlined — runs once per
        # architectural occurrence of every biased branch.
        x = ((self._h ^ n) + GAMMA) & MASK64
        x = ((x ^ (x >> 30)) * MIX1) & MASK64
        x = ((x ^ (x >> 27)) * MIX2) & MASK64
        return ((x ^ (x >> 31)) >> 11) * _INV53 < self.p_taken


class PatternBehavior(BranchBehavior):
    """Periodic branch: outcome follows a fixed bit pattern.

    Patterns shorter than the predictor's history length are perfectly
    learnable; longer ones degrade gracefully.  They model control flow
    driven by regular data structures.
    """

    __slots__ = ("pattern", "length")

    def __init__(self, pattern: tuple[bool, ...]) -> None:
        if not pattern:
            raise ValueError("pattern must contain at least one outcome")
        self.pattern = pattern
        self.length = len(pattern)

    def taken(self, n: int) -> bool:
        return self.pattern[n % self.length]


class IndirectBehavior(BranchBehavior):
    """Indirect jump choosing among a fixed set of targets.

    ``regularity`` is the probability that an occurrence goes to the
    dominant (first) target; the rest are spread pseudo-randomly.  An
    indirect jump is always taken.
    """

    __slots__ = ("targets", "salt", "regularity")

    def __init__(self, targets: tuple[int, ...], salt: int,
                 regularity: float = 0.7) -> None:
        if not targets:
            raise ValueError("indirect behaviour needs at least one target")
        if not 0.0 <= regularity <= 1.0:
            raise ValueError(
                f"regularity must be within [0, 1], got {regularity}")
        self.targets = targets
        self.salt = salt
        self.regularity = regularity

    def taken(self, n: int) -> bool:
        return True

    def target(self, n: int) -> int:
        h = mix64(self.salt, n)
        if unit_float(h) < self.regularity or len(self.targets) == 1:
            return self.targets[0]
        alternatives = self.targets[1:]
        return alternatives[mix64(self.salt, n, 1) % len(alternatives)]
